//! The engine's view of the proxy fleet.
//!
//! There is exactly one Bifrost proxy per live-tested service. The engine
//! owns the fleet and pushes configurations on state transitions; the
//! simulated application holds clones of the same handles so its request
//! routing immediately reflects configuration changes (exactly like the real
//! proxies picking up engine updates over HTTP).

use bifrost_core::ids::{ServiceId, VersionId};
use bifrost_core::routing::RoutingRule;
use bifrost_proxy::{BifrostProxy, ProxyConfig, ProxyRule, DEFAULT_SESSION_SHARDS};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A shared handle to one proxy instance.
pub type ProxyHandle = Arc<RwLock<BifrostProxy>>;

/// The set of proxies managed by one engine.
pub struct ProxyFleet {
    proxies: BTreeMap<ServiceId, ProxyHandle>,
    defaults: BTreeMap<ServiceId, VersionId>,
    revisions: BTreeMap<ServiceId, u64>,
    /// Session-store shards configured into every registered proxy.
    session_shards: usize,
}

impl Default for ProxyFleet {
    fn default() -> Self {
        Self {
            proxies: BTreeMap::new(),
            defaults: BTreeMap::new(),
            revisions: BTreeMap::new(),
            session_shards: DEFAULT_SESSION_SHARDS,
        }
    }
}

impl ProxyFleet {
    /// Creates an empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty fleet whose proxies shard their sticky-session
    /// tables `session_shards` ways (minimum 1).
    pub fn with_session_shards(session_shards: usize) -> Self {
        Self {
            session_shards: session_shards.max(1),
            ..Self::default()
        }
    }

    /// The session-shard count configured into registered proxies.
    pub fn session_shards(&self) -> usize {
        self.session_shards
    }

    /// Registers a proxy for `service`, initially routing everything to
    /// `default_version`. Returns the shared handle (give clones of it to the
    /// application simulation).
    pub fn register(&mut self, service: ServiceId, default_version: VersionId) -> ProxyHandle {
        let config = ProxyConfig::new(service, default_version);
        let proxy = Arc::new(RwLock::new(
            BifrostProxy::new(format!("proxy-{service}"), config)
                .with_session_shards(self.session_shards),
        ));
        self.proxies.insert(service, proxy.clone());
        self.defaults.insert(service, default_version);
        self.revisions.insert(service, 0);
        proxy
    }

    /// The handle of the proxy fronting `service`, if registered.
    pub fn handle(&self, service: ServiceId) -> Option<ProxyHandle> {
        self.proxies.get(&service).cloned()
    }

    /// Number of registered proxies.
    pub fn len(&self) -> usize {
        self.proxies.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.proxies.is_empty()
    }

    /// The services with a registered proxy.
    pub fn services(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.proxies.keys().copied()
    }

    /// Translates a state's routing rules into per-service proxy
    /// configurations and applies them. Returns the `(service, revision)`
    /// pairs that were updated. Services without a registered proxy are
    /// skipped (the paper's auth service has no proxy either).
    pub fn apply_rules(&mut self, rules: &[RoutingRule]) -> Vec<(ServiceId, u64)> {
        // Group rules by service: one config per service carrying all rules.
        let mut grouped: BTreeMap<ServiceId, Vec<&RoutingRule>> = BTreeMap::new();
        for rule in rules {
            grouped.entry(rule.service()).or_default().push(rule);
        }
        let mut updated = Vec::new();
        for (service, service_rules) in grouped {
            let (Some(handle), Some(default)) =
                (self.proxies.get(&service), self.defaults.get(&service))
            else {
                continue;
            };
            let revision = self.revisions.entry(service).or_insert(0);
            *revision += 1;
            let mut config = ProxyConfig::new(service, *default).with_revision(*revision);
            for rule in service_rules {
                config = config.with_rule(translate_rule(rule));
            }
            handle.write().apply_config(config);
            updated.push((service, *revision));
        }
        updated
    }

    /// Resets every proxy back to its inactive (default-route) configuration,
    /// used when a strategy completes and Bifrost "can be removed".
    pub fn reset_all(&mut self) {
        for (service, handle) in &self.proxies {
            let default = self.defaults[service];
            let revision = self.revisions.entry(*service).or_insert(0);
            *revision += 1;
            handle
                .write()
                .apply_config(ProxyConfig::new(*service, default).with_revision(*revision));
        }
    }
}

impl fmt::Debug for ProxyFleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProxyFleet")
            .field("proxies", &self.proxies.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Translates a model-level routing rule into a proxy-level rule.
fn translate_rule(rule: &RoutingRule) -> ProxyRule {
    match rule {
        RoutingRule::Split {
            split,
            sticky,
            selector,
            mode,
            ..
        } => ProxyRule::split(split.clone(), *sticky, selector.clone(), *mode),
        RoutingRule::Shadow { route, .. } => ProxyRule::shadow(*route),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bifrost_core::ids::UserId;
    use bifrost_core::routing::{DarkLaunchRoute, Percentage, RoutingMode, TrafficSplit};
    use bifrost_core::user::UserSelector;
    use bifrost_proxy::ProxyRequest;

    fn ids() -> (ServiceId, VersionId, VersionId) {
        (ServiceId::new(0), VersionId::new(0), VersionId::new(1))
    }

    #[test]
    fn register_and_lookup() {
        let (service, stable, _) = ids();
        let mut fleet = ProxyFleet::new();
        assert!(fleet.is_empty());
        let handle = fleet.register(service, stable);
        assert_eq!(fleet.len(), 1);
        assert!(fleet.handle(service).is_some());
        assert!(fleet.handle(ServiceId::new(9)).is_none());
        assert_eq!(fleet.services().collect::<Vec<_>>(), vec![service]);
        assert_eq!(handle.read().config().default_version(), stable);
    }

    #[test]
    fn apply_rules_pushes_config_and_bumps_revision() {
        let (service, stable, canary) = ids();
        let mut fleet = ProxyFleet::new();
        let handle = fleet.register(service, stable);

        let rules = vec![RoutingRule::Split {
            service,
            split: TrafficSplit::canary(stable, canary, Percentage::new(5.0).unwrap()).unwrap(),
            sticky: false,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        }];
        let updated = fleet.apply_rules(&rules);
        assert_eq!(updated, vec![(service, 1)]);
        assert!(handle.read().is_active());
        assert_eq!(handle.read().config().revision(), 1);

        // A second application bumps the revision again.
        let updated = fleet.apply_rules(&rules);
        assert_eq!(updated, vec![(service, 2)]);
    }

    #[test]
    fn rules_for_unregistered_services_are_skipped() {
        let (service, stable, canary) = ids();
        let mut fleet = ProxyFleet::new();
        fleet.register(service, stable);
        let rules = vec![RoutingRule::Shadow {
            service: ServiceId::new(7),
            route: DarkLaunchRoute::new(stable, canary, Percentage::full()),
        }];
        assert!(fleet.apply_rules(&rules).is_empty());
    }

    #[test]
    fn split_and_shadow_rules_for_one_service_combine_into_one_config() {
        let (service, stable, canary) = ids();
        let mut fleet = ProxyFleet::new();
        let handle = fleet.register(service, stable);
        let rules = vec![
            RoutingRule::Split {
                service,
                split: TrafficSplit::ab(stable, canary).unwrap(),
                sticky: true,
                selector: UserSelector::All,
                mode: RoutingMode::CookieBased,
            },
            RoutingRule::Shadow {
                service,
                route: DarkLaunchRoute::new(stable, canary, Percentage::full()),
            },
        ];
        fleet.apply_rules(&rules);
        let proxy = handle.read();
        assert_eq!(proxy.config().rules().len(), 2);
        assert!(proxy.config().has_dark_launch());
        assert!(proxy.config().requires_sticky_sessions());
    }

    #[test]
    fn reset_restores_default_routing() {
        let (service, stable, canary) = ids();
        let mut fleet = ProxyFleet::new();
        let handle = fleet.register(service, stable);
        fleet.apply_rules(&[RoutingRule::Split {
            service,
            split: TrafficSplit::all_to(canary),
            sticky: false,
            selector: UserSelector::All,
            mode: RoutingMode::CookieBased,
        }]);
        assert_eq!(
            handle
                .write()
                .route(&ProxyRequest::from_user(UserId::new(1)))
                .primary,
            canary
        );
        fleet.reset_all();
        assert!(!handle.read().is_active());
        assert_eq!(
            handle
                .write()
                .route(&ProxyRequest::from_user(UserId::new(1)))
                .primary,
            stable
        );
    }
}
