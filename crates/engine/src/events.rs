//! The engine's event machinery: the pending-action queue and the emitted
//! event stream.
//!
//! [`EventQueue`] is the engine's time-ordered scheduler — a binary heap of
//! `(fire time, sequence, action)` entries with a FIFO tie-break, popped in
//! strictly non-decreasing time order. It deliberately mirrors the heap
//! design of the generic `bifrost_simnet::Scheduler` (same ordering and
//! past-clamping semantics) but lives in the engine so the hot loop owns
//! its queue: engine-specific affordances like [`EventQueue::schedule_batch`]
//! (the per-state check-timer fan-out reserves heap capacity once) can be
//! added without widening the cross-crate generic API. The engine-side
//! *algorithmic* wins of this layer are elsewhere: the O(1)
//! `BifrostEngine::all_finished` counter and the indexed [`EventLog`]
//! below.
//!
//! Every significant action of the engine is recorded as an [`EngineEvent`]
//! in the [`EventLog`]. The CLI and dashboard consume this stream for status
//! updates; the experiment harnesses use it to reconstruct enactment
//! timelines; tests use it to assert on the engine's behaviour. The log
//! maintains a per-strategy index so [`EventLog::for_strategy`] is
//! proportional to that strategy's events rather than to the whole log —
//! the difference between O(n) and O(n²) when a harness extracts the
//! timelines of hundreds of parallel strategies.

use bifrost_core::ids::{CheckId, StateId, StrategyId};
use bifrost_core::ServiceId;
use bifrost_simnet::SimTime;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// One entry of the engine's pending-action heap.
struct QueueEntry<A> {
    at: SimTime,
    sequence: u64,
    action: A,
}

impl<A> PartialEq for QueueEntry<A> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.sequence == other.sequence
    }
}
impl<A> Eq for QueueEntry<A> {}
impl<A> PartialOrd for QueueEntry<A> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<A> Ord for QueueEntry<A> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.sequence).cmp(&(other.at, other.sequence))
    }
}

/// A fired queue entry: when it was due and what it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DueAction<A> {
    /// The virtual time the action was scheduled for.
    pub at: SimTime,
    /// The action payload.
    pub action: A,
}

/// The engine's time-ordered action scheduler: a min-heap over
/// `(fire time, insertion sequence)` so simultaneous actions fire in FIFO
/// order and virtual time never runs backwards.
pub struct EventQueue<A> {
    heap: BinaryHeap<Reverse<QueueEntry<A>>>,
    now: SimTime,
    next_sequence: u64,
    processed: u64,
}

impl<A> Default for EventQueue<A> {
    fn default() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_sequence: 0,
            processed: 0,
        }
    }
}

impl<A> EventQueue<A> {
    /// Creates an empty queue at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time (the fire time of the most recently popped
    /// action, or zero initially).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an action at an absolute virtual time. Actions scheduled in
    /// the past are clamped to the current time (they fire "now").
    pub fn schedule_at(&mut self, at: SimTime, action: A) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Reverse(QueueEntry {
            at: at.max(self.now),
            sequence,
            action,
        }));
    }

    /// Schedules a batch of `(time, action)` pairs in iteration order — the
    /// per-state fan-out of check-timer repetitions uses this to reserve
    /// heap capacity once.
    pub fn schedule_batch(&mut self, batch: impl IntoIterator<Item = (SimTime, A)>) {
        let batch = batch.into_iter();
        self.heap.reserve(batch.size_hint().0);
        for (at, action) in batch {
            self.schedule_at(at, action);
        }
    }

    /// Pops the next due action, advancing the virtual clock to its fire
    /// time.
    pub fn pop(&mut self) -> Option<DueAction<A>> {
        self.heap.pop().map(|Reverse(entry)| {
            self.now = self.now.max(entry.at);
            self.processed += 1;
            DueAction {
                at: entry.at,
                action: entry.action,
            }
        })
    }

    /// Pops the next action only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<DueAction<A>> {
        match self.heap.peek() {
            Some(Reverse(entry)) if entry.at <= deadline => self.pop(),
            _ => None,
        }
    }

    /// The fire time of the next pending action without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(entry)| entry.at)
    }

    /// Number of pending actions.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no actions are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of actions popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Advances the clock to `at` without processing actions (used to close
    /// out a run window after the last event).
    pub fn advance_to(&mut self, at: SimTime) {
        self.now = self.now.max(at);
    }
}

impl<A> std::fmt::Debug for EventQueue<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("processed", &self.processed)
            .finish()
    }
}

/// One entry of the engine's event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A strategy was scheduled for execution.
    StrategyScheduled {
        /// The strategy.
        strategy: StrategyId,
        /// When execution is supposed to start.
        start_at: SimTime,
    },
    /// A strategy's execution actually started.
    StrategyStarted {
        /// The strategy.
        strategy: StrategyId,
        /// When it started.
        at: SimTime,
    },
    /// The automaton entered a state.
    StateEntered {
        /// The strategy.
        strategy: StrategyId,
        /// The state entered.
        state: StateId,
        /// When it was entered.
        at: SimTime,
    },
    /// A proxy received a new routing configuration.
    ProxyConfigured {
        /// The strategy that caused the update.
        strategy: StrategyId,
        /// The service whose proxy was updated.
        service: ServiceId,
        /// The new configuration revision.
        revision: u64,
        /// When the update completed.
        at: SimTime,
    },
    /// One timed execution of a check completed.
    CheckExecuted {
        /// The strategy.
        strategy: StrategyId,
        /// The state the check belongs to.
        state: StateId,
        /// The executed check.
        check: CheckId,
        /// Whether the execution returned 1 (success) or 0 (failure).
        success: bool,
        /// When the execution completed.
        at: SimTime,
    },
    /// An exception check failed, forcing an immediate fallback transition.
    ExceptionTriggered {
        /// The strategy.
        strategy: StrategyId,
        /// The state that was aborted.
        state: StateId,
        /// The failing check.
        check: CheckId,
        /// The fallback state.
        fallback: StateId,
        /// When it happened.
        at: SimTime,
    },
    /// A state finished and its outcome was evaluated.
    StateEvaluated {
        /// The strategy.
        strategy: StrategyId,
        /// The evaluated state.
        state: StateId,
        /// The aggregated, weighted outcome value.
        outcome: i64,
        /// The successor chosen by the transition function (`None` when the
        /// state was final).
        next: Option<StateId>,
        /// When the evaluation completed.
        at: SimTime,
    },
    /// A strategy finished (reached a final state).
    StrategyCompleted {
        /// The strategy.
        strategy: StrategyId,
        /// The final state reached.
        final_state: StateId,
        /// Whether the final state is the success state.
        success: bool,
        /// When it completed.
        at: SimTime,
    },
}

impl EngineEvent {
    /// The strategy the event belongs to.
    pub fn strategy(&self) -> StrategyId {
        match self {
            EngineEvent::StrategyScheduled { strategy, .. }
            | EngineEvent::StrategyStarted { strategy, .. }
            | EngineEvent::StateEntered { strategy, .. }
            | EngineEvent::ProxyConfigured { strategy, .. }
            | EngineEvent::CheckExecuted { strategy, .. }
            | EngineEvent::ExceptionTriggered { strategy, .. }
            | EngineEvent::StateEvaluated { strategy, .. }
            | EngineEvent::StrategyCompleted { strategy, .. } => *strategy,
        }
    }

    /// The virtual time the event refers to.
    pub fn at(&self) -> SimTime {
        match self {
            EngineEvent::StrategyScheduled { start_at, .. } => *start_at,
            EngineEvent::StrategyStarted { at, .. }
            | EngineEvent::StateEntered { at, .. }
            | EngineEvent::ProxyConfigured { at, .. }
            | EngineEvent::CheckExecuted { at, .. }
            | EngineEvent::ExceptionTriggered { at, .. }
            | EngineEvent::StateEvaluated { at, .. }
            | EngineEvent::StrategyCompleted { at, .. } => *at,
        }
    }

    /// A short human-readable description used by the CLI/dashboard.
    pub fn describe(&self) -> String {
        match self {
            EngineEvent::StrategyScheduled { strategy, start_at } => {
                format!("{strategy} scheduled to start at {start_at}")
            }
            EngineEvent::StrategyStarted { strategy, at } => {
                format!("{strategy} started at {at}")
            }
            EngineEvent::StateEntered {
                strategy,
                state,
                at,
            } => {
                format!("{strategy} entered {state} at {at}")
            }
            EngineEvent::ProxyConfigured {
                strategy,
                service,
                revision,
                at,
            } => format!("{strategy} configured proxy of {service} (rev {revision}) at {at}"),
            EngineEvent::CheckExecuted {
                strategy,
                check,
                success,
                at,
                ..
            } => format!(
                "{strategy} executed {check} at {at}: {}",
                if *success { "ok" } else { "failed" }
            ),
            EngineEvent::ExceptionTriggered {
                strategy,
                check,
                fallback,
                at,
                ..
            } => format!("{strategy} exception on {check} at {at}, falling back to {fallback}"),
            EngineEvent::StateEvaluated {
                strategy,
                state,
                outcome,
                next,
                at,
            } => match next {
                Some(next) => {
                    format!("{strategy} evaluated {state} at {at}: outcome {outcome} → {next}")
                }
                None => format!("{strategy} evaluated final {state} at {at}: outcome {outcome}"),
            },
            EngineEvent::StrategyCompleted {
                strategy,
                final_state,
                success,
                at,
            } => format!(
                "{strategy} completed in {final_state} at {at} ({})",
                if *success {
                    "rolled out"
                } else {
                    "rolled back"
                }
            ),
        }
    }
}

/// An append-only log of engine events with a per-strategy index.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<EngineEvent>,
    /// Positions in `events` belonging to each strategy, in insertion order.
    by_strategy: BTreeMap<StrategyId, Vec<usize>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: EngineEvent) {
        self.by_strategy
            .entry(event.strategy())
            .or_default()
            .push(self.events.len());
        self.events.push(event);
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Events belonging to one strategy, in insertion order. Indexed: the
    /// cost is proportional to that strategy's events, not to the whole log.
    pub fn for_strategy(&self, strategy: StrategyId) -> impl Iterator<Item = &EngineEvent> {
        self.by_strategy
            .get(&strategy)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .map(move |&i| &self.events[i])
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of state transitions recorded for a strategy.
    pub fn transitions_of(&self, strategy: StrategyId) -> usize {
        self.for_strategy(strategy)
            .filter(|e| matches!(e, EngineEvent::StateEntered { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<EngineEvent> {
        let s = StrategyId::new(1);
        vec![
            EngineEvent::StrategyScheduled {
                strategy: s,
                start_at: SimTime::from_secs(0),
            },
            EngineEvent::StrategyStarted {
                strategy: s,
                at: SimTime::from_secs(0),
            },
            EngineEvent::StateEntered {
                strategy: s,
                state: StateId::new(0),
                at: SimTime::from_secs(0),
            },
            EngineEvent::CheckExecuted {
                strategy: s,
                state: StateId::new(0),
                check: CheckId::new(0),
                success: true,
                at: SimTime::from_secs(12),
            },
            EngineEvent::StateEvaluated {
                strategy: s,
                state: StateId::new(0),
                outcome: 5,
                next: Some(StateId::new(1)),
                at: SimTime::from_secs(60),
            },
            EngineEvent::StrategyCompleted {
                strategy: s,
                final_state: StateId::new(1),
                success: true,
                at: SimTime::from_secs(61),
            },
        ]
    }

    #[test]
    fn event_accessors() {
        for event in sample_events() {
            assert_eq!(event.strategy(), StrategyId::new(1));
            assert!(!event.describe().is_empty());
        }
        let completed = sample_events().pop().unwrap();
        assert_eq!(completed.at(), SimTime::from_secs(61));
    }

    #[test]
    fn log_filters_by_strategy() {
        let mut log = EventLog::new();
        for event in sample_events() {
            log.push(event);
        }
        log.push(EngineEvent::StrategyStarted {
            strategy: StrategyId::new(2),
            at: SimTime::from_secs(5),
        });
        assert_eq!(log.len(), 7);
        assert!(!log.is_empty());
        assert_eq!(log.for_strategy(StrategyId::new(1)).count(), 6);
        assert_eq!(log.for_strategy(StrategyId::new(2)).count(), 1);
        assert_eq!(log.transitions_of(StrategyId::new(1)), 1);
        assert_eq!(log.events().len(), 7);
    }

    #[test]
    fn queue_pops_in_time_order_with_fifo_ties() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.schedule_at(SimTime::from_secs(3), "c");
        q.schedule_at(SimTime::from_secs(1), "a");
        q.schedule_batch([(SimTime::from_secs(1), "b"), (SimTime::from_secs(2), "x")]);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|e| e.action).collect();
        // Same-instant entries fire in insertion order.
        assert_eq!(order, vec!["a", "b", "x", "c"]);
        assert_eq!(q.now(), SimTime::from_secs(3));
        assert_eq!(q.processed(), 4);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_clamps_past_events_and_respects_deadlines() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_secs(10), 1);
        q.pop();
        // Scheduled "in the past" relative to now = 10 s → fires at 10 s.
        q.schedule_at(SimTime::from_secs(2), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(10)));
        assert!(q.pop_until(SimTime::from_secs(5)).is_none());
        assert!(q.pop_until(SimTime::from_secs(10)).is_some());
        q.advance_to(SimTime::from_secs(99));
        assert_eq!(q.now(), SimTime::from_secs(99));
        assert!(format!("{q:?}").contains("pending"));
    }

    #[test]
    fn log_index_matches_linear_scan() {
        let mut log = EventLog::new();
        for strategy in [1u64, 2, 1, 3, 1, 2] {
            log.push(EngineEvent::StrategyStarted {
                strategy: StrategyId::new(strategy),
                at: SimTime::from_secs(strategy),
            });
        }
        for id in [1u64, 2, 3, 4] {
            let indexed: Vec<_> = log.for_strategy(StrategyId::new(id)).collect();
            let scanned: Vec<_> = log
                .events()
                .iter()
                .filter(|e| e.strategy() == StrategyId::new(id))
                .collect();
            assert_eq!(indexed, scanned);
        }
    }

    #[test]
    fn describe_mentions_rollback_vs_rollout() {
        let done = EngineEvent::StrategyCompleted {
            strategy: StrategyId::new(1),
            final_state: StateId::new(9),
            success: false,
            at: SimTime::from_secs(2),
        };
        assert!(done.describe().contains("rolled back"));
        let exception = EngineEvent::ExceptionTriggered {
            strategy: StrategyId::new(1),
            state: StateId::new(0),
            check: CheckId::new(3),
            fallback: StateId::new(9),
            at: SimTime::from_secs(2),
        };
        assert!(exception.describe().contains("falling back"));
    }
}
