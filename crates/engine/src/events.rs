//! The engine's event stream.
//!
//! Every significant action of the engine is recorded as an [`EngineEvent`].
//! The CLI and dashboard consume this stream for status updates; the
//! experiment harnesses use it to reconstruct enactment timelines; tests use
//! it to assert on the engine's behaviour.

use bifrost_core::ids::{CheckId, StateId, StrategyId};
use bifrost_core::ServiceId;
use bifrost_simnet::SimTime;
use serde::{Deserialize, Serialize};

/// One entry of the engine's event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EngineEvent {
    /// A strategy was scheduled for execution.
    StrategyScheduled {
        /// The strategy.
        strategy: StrategyId,
        /// When execution is supposed to start.
        start_at: SimTime,
    },
    /// A strategy's execution actually started.
    StrategyStarted {
        /// The strategy.
        strategy: StrategyId,
        /// When it started.
        at: SimTime,
    },
    /// The automaton entered a state.
    StateEntered {
        /// The strategy.
        strategy: StrategyId,
        /// The state entered.
        state: StateId,
        /// When it was entered.
        at: SimTime,
    },
    /// A proxy received a new routing configuration.
    ProxyConfigured {
        /// The strategy that caused the update.
        strategy: StrategyId,
        /// The service whose proxy was updated.
        service: ServiceId,
        /// The new configuration revision.
        revision: u64,
        /// When the update completed.
        at: SimTime,
    },
    /// One timed execution of a check completed.
    CheckExecuted {
        /// The strategy.
        strategy: StrategyId,
        /// The state the check belongs to.
        state: StateId,
        /// The executed check.
        check: CheckId,
        /// Whether the execution returned 1 (success) or 0 (failure).
        success: bool,
        /// When the execution completed.
        at: SimTime,
    },
    /// An exception check failed, forcing an immediate fallback transition.
    ExceptionTriggered {
        /// The strategy.
        strategy: StrategyId,
        /// The state that was aborted.
        state: StateId,
        /// The failing check.
        check: CheckId,
        /// The fallback state.
        fallback: StateId,
        /// When it happened.
        at: SimTime,
    },
    /// A state finished and its outcome was evaluated.
    StateEvaluated {
        /// The strategy.
        strategy: StrategyId,
        /// The evaluated state.
        state: StateId,
        /// The aggregated, weighted outcome value.
        outcome: i64,
        /// The successor chosen by the transition function (`None` when the
        /// state was final).
        next: Option<StateId>,
        /// When the evaluation completed.
        at: SimTime,
    },
    /// A strategy finished (reached a final state).
    StrategyCompleted {
        /// The strategy.
        strategy: StrategyId,
        /// The final state reached.
        final_state: StateId,
        /// Whether the final state is the success state.
        success: bool,
        /// When it completed.
        at: SimTime,
    },
}

impl EngineEvent {
    /// The strategy the event belongs to.
    pub fn strategy(&self) -> StrategyId {
        match self {
            EngineEvent::StrategyScheduled { strategy, .. }
            | EngineEvent::StrategyStarted { strategy, .. }
            | EngineEvent::StateEntered { strategy, .. }
            | EngineEvent::ProxyConfigured { strategy, .. }
            | EngineEvent::CheckExecuted { strategy, .. }
            | EngineEvent::ExceptionTriggered { strategy, .. }
            | EngineEvent::StateEvaluated { strategy, .. }
            | EngineEvent::StrategyCompleted { strategy, .. } => *strategy,
        }
    }

    /// The virtual time the event refers to.
    pub fn at(&self) -> SimTime {
        match self {
            EngineEvent::StrategyScheduled { start_at, .. } => *start_at,
            EngineEvent::StrategyStarted { at, .. }
            | EngineEvent::StateEntered { at, .. }
            | EngineEvent::ProxyConfigured { at, .. }
            | EngineEvent::CheckExecuted { at, .. }
            | EngineEvent::ExceptionTriggered { at, .. }
            | EngineEvent::StateEvaluated { at, .. }
            | EngineEvent::StrategyCompleted { at, .. } => *at,
        }
    }

    /// A short human-readable description used by the CLI/dashboard.
    pub fn describe(&self) -> String {
        match self {
            EngineEvent::StrategyScheduled { strategy, start_at } => {
                format!("{strategy} scheduled to start at {start_at}")
            }
            EngineEvent::StrategyStarted { strategy, at } => {
                format!("{strategy} started at {at}")
            }
            EngineEvent::StateEntered {
                strategy,
                state,
                at,
            } => {
                format!("{strategy} entered {state} at {at}")
            }
            EngineEvent::ProxyConfigured {
                strategy,
                service,
                revision,
                at,
            } => format!("{strategy} configured proxy of {service} (rev {revision}) at {at}"),
            EngineEvent::CheckExecuted {
                strategy,
                check,
                success,
                at,
                ..
            } => format!(
                "{strategy} executed {check} at {at}: {}",
                if *success { "ok" } else { "failed" }
            ),
            EngineEvent::ExceptionTriggered {
                strategy,
                check,
                fallback,
                at,
                ..
            } => format!("{strategy} exception on {check} at {at}, falling back to {fallback}"),
            EngineEvent::StateEvaluated {
                strategy,
                state,
                outcome,
                next,
                at,
            } => match next {
                Some(next) => {
                    format!("{strategy} evaluated {state} at {at}: outcome {outcome} → {next}")
                }
                None => format!("{strategy} evaluated final {state} at {at}: outcome {outcome}"),
            },
            EngineEvent::StrategyCompleted {
                strategy,
                final_state,
                success,
                at,
            } => format!(
                "{strategy} completed in {final_state} at {at} ({})",
                if *success {
                    "rolled out"
                } else {
                    "rolled back"
                }
            ),
        }
    }
}

/// An append-only log of engine events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<EngineEvent>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: EngineEvent) {
        self.events.push(event);
    }

    /// All events in insertion order.
    pub fn events(&self) -> &[EngineEvent] {
        &self.events
    }

    /// Events belonging to one strategy.
    pub fn for_strategy(&self, strategy: StrategyId) -> impl Iterator<Item = &EngineEvent> {
        self.events.iter().filter(move |e| e.strategy() == strategy)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of state transitions recorded for a strategy.
    pub fn transitions_of(&self, strategy: StrategyId) -> usize {
        self.for_strategy(strategy)
            .filter(|e| matches!(e, EngineEvent::StateEntered { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<EngineEvent> {
        let s = StrategyId::new(1);
        vec![
            EngineEvent::StrategyScheduled {
                strategy: s,
                start_at: SimTime::from_secs(0),
            },
            EngineEvent::StrategyStarted {
                strategy: s,
                at: SimTime::from_secs(0),
            },
            EngineEvent::StateEntered {
                strategy: s,
                state: StateId::new(0),
                at: SimTime::from_secs(0),
            },
            EngineEvent::CheckExecuted {
                strategy: s,
                state: StateId::new(0),
                check: CheckId::new(0),
                success: true,
                at: SimTime::from_secs(12),
            },
            EngineEvent::StateEvaluated {
                strategy: s,
                state: StateId::new(0),
                outcome: 5,
                next: Some(StateId::new(1)),
                at: SimTime::from_secs(60),
            },
            EngineEvent::StrategyCompleted {
                strategy: s,
                final_state: StateId::new(1),
                success: true,
                at: SimTime::from_secs(61),
            },
        ]
    }

    #[test]
    fn event_accessors() {
        for event in sample_events() {
            assert_eq!(event.strategy(), StrategyId::new(1));
            assert!(!event.describe().is_empty());
        }
        let completed = sample_events().pop().unwrap();
        assert_eq!(completed.at(), SimTime::from_secs(61));
    }

    #[test]
    fn log_filters_by_strategy() {
        let mut log = EventLog::new();
        for event in sample_events() {
            log.push(event);
        }
        log.push(EngineEvent::StrategyStarted {
            strategy: StrategyId::new(2),
            at: SimTime::from_secs(5),
        });
        assert_eq!(log.len(), 7);
        assert!(!log.is_empty());
        assert_eq!(log.for_strategy(StrategyId::new(1)).count(), 6);
        assert_eq!(log.for_strategy(StrategyId::new(2)).count(), 1);
        assert_eq!(log.transitions_of(StrategyId::new(1)), 1);
        assert_eq!(log.events().len(), 7);
    }

    #[test]
    fn describe_mentions_rollback_vs_rollout() {
        let done = EngineEvent::StrategyCompleted {
            strategy: StrategyId::new(1),
            final_state: StateId::new(9),
            success: false,
            at: SimTime::from_secs(2),
        };
        assert!(done.describe().contains("rolled back"));
        let exception = EngineEvent::ExceptionTriggered {
            strategy: StrategyId::new(1),
            state: StateId::new(0),
            check: CheckId::new(3),
            fallback: StateId::new(9),
            at: SimTime::from_secs(2),
        };
        assert!(exception.describe().contains("falling back"));
    }
}
