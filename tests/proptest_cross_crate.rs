//! Property-based tests spanning crates: proxy routing against model traffic
//! splits, DSL round trips, and engine determinism.

use bifrost::core::ids::{ServiceId, UserId, VersionId};
use bifrost::core::prelude::*;
use bifrost::engine::{BifrostEngine, EngineConfig};
use bifrost::metrics::{SeriesKey, SharedMetricStore, TimestampMs};
use bifrost::proxy::{BifrostProxy, ProxyConfig, ProxyRequest, ProxyRule};
use bifrost::simnet::SimTime;
use proptest::prelude::*;

fn canary_proxy(share: f64, sticky: bool) -> BifrostProxy {
    let service = ServiceId::new(0);
    let stable = VersionId::new(0);
    let canary = VersionId::new(1);
    let split = TrafficSplit::canary(stable, canary, Percentage::new(share).unwrap()).unwrap();
    BifrostProxy::new(
        "prop-proxy",
        ProxyConfig::new(service, stable).with_rule(ProxyRule::split(
            split,
            sticky,
            UserSelector::All,
            RoutingMode::CookieBased,
        )),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The measured canary share over many users tracks the configured share.
    #[test]
    fn proxy_share_tracks_configuration(share in 5.0f64..95.0) {
        let proxy = canary_proxy(share, false);
        let n = 4_000u64;
        let canary_hits = (0..n)
            .map(|i| proxy.route(&ProxyRequest::from_user(UserId::new(i))))
            .filter(|d| d.primary == VersionId::new(1))
            .count();
        let measured = canary_hits as f64 / n as f64 * 100.0;
        prop_assert!((measured - share).abs() < 5.0, "configured {share} measured {measured}");
    }

    /// Routing is per-user deterministic: the same user always lands on the
    /// same version under an unchanged configuration, with or without sticky
    /// sessions.
    #[test]
    fn proxy_routing_is_deterministic_per_user(share in 1.0f64..99.0, user in 0u64..100_000, sticky in proptest::bool::ANY) {
        let proxy = canary_proxy(share, sticky);
        let first = proxy.route(&ProxyRequest::from_user(UserId::new(user))).primary;
        for _ in 0..5 {
            let next = proxy.route(&ProxyRequest::from_user(UserId::new(user))).primary;
            prop_assert_eq!(next, first);
        }
    }

    /// A DSL document with arbitrary (valid) canary share and durations
    /// compiles into a strategy whose automaton always has a success and a
    /// rollback final state reachable from the start.
    #[test]
    fn dsl_compilation_preserves_structure(share in 1u32..100, duration in 10u64..600, steps in 1u32..10) {
        let step = (100 / steps).max(1);
        let source = format!(
            "name: prop\nstrategy:\n  phases:\n    - phase: canary\n      service: s\n      stable: a\n      candidate: b\n      traffic: {share}\n      duration: {duration}\n    - phase: rollout\n      service: s\n      stable: a\n      candidate: b\n      from_traffic: {step}\n      to_traffic: 100\n      step: {step}\n      step_duration: 10\n"
        );
        let strategy = bifrost::dsl::parse_strategy(&source).unwrap();
        let automaton = strategy.automaton();
        prop_assert!(automaton.is_final(strategy.success_state()));
        prop_assert!(automaton.is_final(strategy.rollback_state()));
        let reachable = automaton.reachable_states();
        prop_assert!(reachable.contains(&strategy.success_state()));
        prop_assert!(reachable.contains(&strategy.rollback_state()));
        prop_assert!(strategy.nominal_duration().as_secs() >= duration);
    }

    /// Engine enactment is deterministic: the same strategy, metrics, and
    /// schedule produce identical state histories and completion times.
    #[test]
    fn engine_enactment_is_deterministic(error_level in 0.0f64..10.0) {
        let run = |error_level: f64| {
            let mut catalog = ServiceCatalog::new();
            let service = catalog.add_service(Service::new("search"));
            let stable = catalog
                .add_version(service, ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 80)))
                .unwrap();
            let canary = catalog
                .add_version(service, ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 80)))
                .unwrap();
            let strategy = StrategyBuilder::new("det", catalog)
                .phase(
                    PhaseSpec::canary("canary", service, stable, canary, Percentage::new(5.0).unwrap())
                        .check(bifrost::core::phase::PhaseCheck::basic(
                            "errors",
                            CheckSpec::single(
                                MetricQuery::new("prometheus", "errors", "request_errors"),
                                Validator::LessThan(5.0),
                            ),
                            Timer::from_secs(10, 3).unwrap(),
                            OutcomeMapping::binary(3, -1, 1).unwrap(),
                        ))
                        .duration_secs(30),
                )
                .build()
                .unwrap();
            let store = SharedMetricStore::new();
            for t in (0..200).step_by(5) {
                store.record_value(
                    SeriesKey::new("request_errors"),
                    TimestampMs::from_secs(t),
                    error_level,
                );
            }
            let mut engine = BifrostEngine::new(EngineConfig::default());
            engine.register_store_provider("prometheus", store);
            engine.register_proxy(service, stable);
            let handle = engine.schedule(strategy, SimTime::ZERO);
            engine.run_to_completion(SimTime::from_secs(600));
            let report = engine.report(handle).unwrap();
            (report.succeeded(), report.state_history.clone(), report.finished_at)
        };
        let a = run(error_level);
        let b = run(error_level);
        prop_assert_eq!(a.1.len(), b.1.len());
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.2, b.2);
        // The success/rollback decision follows the metric level.
        if error_level < 5.0 {
            prop_assert!(a.0, "low error level must succeed");
        } else {
            prop_assert!(!a.0, "high error level must roll back");
        }
    }
}
