//! End-to-end integration tests: DSL source → compiled strategy → engine
//! enactment, spanning every crate of the workspace.

use bifrost::dsl;
use bifrost::engine::{BifrostEngine, EngineConfig, EngineEvent};
use bifrost::metrics::{SeriesKey, SharedMetricStore, TimestampMs};
use bifrost::simnet::SimTime;

const MULTI_PHASE: &str = r#"
name: integration-search-rollout
deployment:
  services:
    - service: search
      proxy: search-proxy:8080
      versions:
        - name: search-v1
          host: 10.0.0.1
          port: 8080
        - name: fastsearch
          host: 10.0.0.2
          port: 8080
strategy:
  phases:
    - phase: canary
      name: canary-5
      service: search
      stable: search-v1
      candidate: fastsearch
      traffic: 5
      duration: 60
      checks:
        - name: error-count
          provider: prometheus
          query: request_errors{instance="search:80"}
          interval: 12
          executions: 5
          validator: "<5"
    - phase: dark_launch
      name: shadow-all
      service: search
      from: search-v1
      to: fastsearch
      traffic: 100
      duration: 60
    - phase: ab_test
      name: ab
      service: search
      a: search-v1
      b: fastsearch
      duration: 60
      checks:
        - name: sales
          provider: prometheus
          query: items_sold_total{version="fastsearch"}
          interval: 60
          executions: 1
          validator: ">0"
    - phase: rollout
      name: ramp
      service: search
      stable: search-v1
      candidate: fastsearch
      from_traffic: 20
      to_traffic: 100
      step: 20
      step_duration: 15
"#;

fn engine_with_store() -> (BifrostEngine, SharedMetricStore) {
    let store = SharedMetricStore::new();
    let mut engine = BifrostEngine::new(EngineConfig::default());
    engine.register_store_provider("prometheus", store.clone());
    (engine, store)
}

fn feed_healthy_metrics(store: &SharedMetricStore) {
    for t in (0..2_000).step_by(5) {
        store.record_value(
            SeriesKey::new("request_errors").with_label("instance", "search:80"),
            TimestampMs::from_secs(t),
            1.0,
        );
        store.record_value(
            SeriesKey::new("items_sold_total").with_label("version", "fastsearch"),
            TimestampMs::from_secs(t),
            1.0 + t as f64 / 60.0,
        );
    }
}

#[test]
fn dsl_strategy_runs_through_all_phases_and_succeeds() {
    let strategy = dsl::parse_strategy(MULTI_PHASE).expect("valid DSL");
    assert_eq!(strategy.name(), "integration-search-rollout");
    let nominal = strategy.nominal_duration();

    let (mut engine, store) = engine_with_store();
    feed_healthy_metrics(&store);
    let (search, _) = strategy.services().service_by_name("search").unwrap();
    let stable = strategy.services().versions_of(search)[0];
    let proxy = engine.register_proxy(search, stable);

    let handle = engine.schedule(strategy, SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(3_600));

    let report = engine.report(handle).unwrap();
    assert!(report.succeeded(), "report: {report:?}");
    // canary + dark + ab + 5 rollout steps (20..100) + success = 9 entries.
    assert_eq!(report.state_history.len(), 9);
    assert!(report.measured_duration().unwrap() >= nominal);
    assert!(report.enactment_delay().unwrap() < std::time::Duration::from_secs(5));

    // The proxy ends the run routing all traffic to the new version.
    let stats = proxy.read().stats().clone();
    assert!(
        stats.config_updates >= 8,
        "config updates {}",
        stats.config_updates
    );

    // The event log contains every lifecycle milestone.
    let events = engine.events();
    assert!(events
        .for_strategy(handle.id())
        .any(|e| matches!(e, EngineEvent::StrategyStarted { .. })));
    assert!(events
        .for_strategy(handle.id())
        .any(|e| matches!(e, EngineEvent::StrategyCompleted { success: true, .. })));
    let check_executions = events
        .for_strategy(handle.id())
        .filter(|e| matches!(e, EngineEvent::CheckExecuted { .. }))
        .count();
    // 5 canary executions + 1 dark pass + 1 ab sales + 5 rollout passes.
    assert!(
        check_executions >= 12,
        "check executions {check_executions}"
    );
}

#[test]
fn dsl_strategy_rolls_back_on_bad_metrics() {
    let strategy = dsl::parse_strategy(MULTI_PHASE).expect("valid DSL");
    let (mut engine, store) = engine_with_store();
    // Error counts far above the "< 5" validator.
    for t in (0..2_000).step_by(5) {
        store.record_value(
            SeriesKey::new("request_errors").with_label("instance", "search:80"),
            TimestampMs::from_secs(t),
            50.0,
        );
    }
    let (search, _) = strategy.services().service_by_name("search").unwrap();
    let stable = strategy.services().versions_of(search)[0];
    engine.register_proxy(search, stable);

    let handle = engine.schedule(strategy, SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(3_600));
    let report = engine.report(handle).unwrap();
    assert!(report.is_finished());
    assert!(!report.succeeded());
    // The rollback happens right after the canary phase: canary + rollback.
    assert_eq!(report.state_history.len(), 2);
}

#[test]
fn many_dsl_strategies_run_in_parallel_on_one_engine() {
    let (mut engine, store) = engine_with_store();
    feed_healthy_metrics(&store);

    let mut handles = Vec::new();
    for i in 0..25 {
        let strategy = dsl::parse_strategy(MULTI_PHASE).expect("valid DSL");
        let (search, _) = strategy.services().service_by_name("search").unwrap();
        let stable = strategy.services().versions_of(search)[0];
        if i == 0 {
            engine.register_proxy(search, stable);
        }
        handles.push(engine.schedule(strategy, SimTime::ZERO));
    }
    engine.run_to_completion(SimTime::from_secs(7_200));
    assert!(engine.all_finished());
    let succeeded = handles
        .iter()
        .filter_map(|h| engine.report(*h))
        .filter(|r| r.succeeded())
        .count();
    assert_eq!(succeeded, 25);
    // Delays grow with contention but stay bounded on the single core.
    let max_delay = handles
        .iter()
        .filter_map(|h| engine.report(*h))
        .filter_map(|r| r.enactment_delay())
        .max()
        .unwrap();
    assert!(
        max_delay < std::time::Duration::from_secs(60),
        "max delay {max_delay:?}"
    );
}

#[test]
fn validation_only_parsing_reports_documents_without_compiling() {
    let document = dsl::parse_document(MULTI_PHASE).expect("valid DSL");
    assert_eq!(document.phases.len(), 4);
    assert_eq!(document.deployment.services.len(), 1);
    assert_eq!(document.phases[0].checks.len(), 1);
    assert!(dsl::parse_document("nonsense: [unterminated").is_err());
}
