//! Failure-injection integration tests: how the engine behaves when
//! monitoring data degrades or disappears mid-rollout, when regressions
//! surface only after several phases, and when strategies start while others
//! are already mid-flight.

use bifrost::core::ids::ServiceId;
use bifrost::core::phase::PhaseCheck;
use bifrost::core::prelude::*;
use bifrost::engine::{BifrostEngine, EngineConfig, EngineEvent};
use bifrost::metrics::{SeriesKey, SharedMetricStore, TimestampMs};
use bifrost::simnet::SimTime;
use std::time::Duration;

struct Fixture {
    catalog: ServiceCatalog,
    service: ServiceId,
    stable: VersionId,
    canary: VersionId,
}

fn fixture() -> Fixture {
    let mut catalog = ServiceCatalog::new();
    let service = catalog.add_service(Service::new("payments"));
    let stable = catalog
        .add_version(
            service,
            ServiceVersion::new("v1", Endpoint::new("10.0.0.1", 443)),
        )
        .unwrap();
    let canary = catalog
        .add_version(
            service,
            ServiceVersion::new("v2", Endpoint::new("10.0.0.2", 443)),
        )
        .unwrap();
    Fixture {
        catalog,
        service,
        stable,
        canary,
    }
}

fn error_check(interval_secs: u64, executions: u32) -> PhaseCheck {
    PhaseCheck::basic(
        "error-rate",
        CheckSpec::single(
            MetricQuery::new("prometheus", "errors", "payment_errors")
                .with_aggregation(bifrost::core::check::QueryAggregation::Max)
                .with_window_secs(interval_secs),
            Validator::LessThan(5.0),
        ),
        Timer::from_secs(interval_secs, executions).unwrap(),
        // Tolerate a single failing execution (stochastic blips), as the
        // paper's basic-check semantics intend.
        OutcomeMapping::binary(executions as i64 - 1, -1, 1).unwrap(),
    )
}

fn exception_check(interval_secs: u64, executions: u32) -> PhaseCheck {
    PhaseCheck::exception(
        "hard-error-spike",
        CheckSpec::single(
            MetricQuery::new("prometheus", "errors", "payment_errors"),
            Validator::LessThan(50.0),
        ),
        Timer::from_secs(interval_secs, executions).unwrap(),
    )
}

fn two_phase_strategy(f: &Fixture) -> Strategy {
    StrategyBuilder::new("payments-rollout", f.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary",
                f.service,
                f.stable,
                f.canary,
                Percentage::new(10.0).unwrap(),
            )
            .check(error_check(10, 6))
            .check(exception_check(10, 6))
            .duration_secs(60),
        )
        .phase(PhaseSpec::gradual_rollout(
            "ramp",
            f.service,
            f.stable,
            f.canary,
            Percentage::new(25.0).unwrap(),
            Percentage::new(100.0).unwrap(),
            Percentage::new(25.0).unwrap(),
            Duration::from_secs(30),
        ))
        .build()
        .unwrap()
}

fn engine_with(store: &SharedMetricStore) -> BifrostEngine {
    let mut engine = BifrostEngine::new(EngineConfig::default());
    engine.register_store_provider("prometheus", store.clone());
    engine
}

fn record_errors(store: &SharedMetricStore, from_secs: u64, to_secs: u64, level: f64) {
    for t in (from_secs..to_secs).step_by(5) {
        store.record_value(
            SeriesKey::new("payment_errors"),
            TimestampMs::from_secs(t),
            level,
        );
    }
}

#[test]
fn single_failing_execution_is_tolerated_by_basic_checks() {
    let f = fixture();
    let store = SharedMetricStore::new();
    // Healthy everywhere except one short error blip around t = 25 s: exactly
    // one of the six canary check executions (the one whose look-back window
    // covers the blip) observes it. The blip stays below the exception
    // check's hard limit of 50.
    record_errors(&store, 0, 24, 1.0);
    record_errors(&store, 24, 29, 30.0);
    record_errors(&store, 29, 600, 1.0);

    let mut engine = engine_with(&store);
    engine.register_proxy(f.service, f.stable);
    let handle = engine.schedule(two_phase_strategy(&f), SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(3_600));

    let report = engine.report(handle).unwrap();
    assert!(
        report.succeeded(),
        "a single blip must not abort the rollout: {report:?}"
    );
    let failed_executions = engine
        .events()
        .for_strategy(handle.id())
        .filter(|e| matches!(e, EngineEvent::CheckExecuted { success: false, .. }))
        .count();
    assert!(failed_executions >= 1, "the blip must have been observed");
}

#[test]
fn sustained_regression_rolls_back_even_after_the_canary_phase_passed() {
    let f = fixture();
    let store = SharedMetricStore::new();
    // Healthy during the canary phase, degraded afterwards. The gradual
    // rollout states carry no checks of their own in this strategy, so add a
    // second strategy whose ramp carries the check to observe the rollback.
    let strategy = StrategyBuilder::new("guarded-ramp", f.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary",
                f.service,
                f.stable,
                f.canary,
                Percentage::new(10.0).unwrap(),
            )
            .check(error_check(10, 3))
            .duration_secs(30),
        )
        .phase(
            PhaseSpec::canary(
                "hold-50",
                f.service,
                f.stable,
                f.canary,
                Percentage::new(50.0).unwrap(),
            )
            .check(error_check(10, 3))
            .duration_secs(30),
        )
        .build()
        .unwrap();
    record_errors(&store, 0, 35, 1.0);
    record_errors(&store, 35, 600, 40.0);

    let mut engine = engine_with(&store);
    engine.register_proxy(f.service, f.stable);
    let handle = engine.schedule(strategy, SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(3_600));

    let report = engine.report(handle).unwrap();
    assert!(report.is_finished());
    assert!(!report.succeeded(), "late regression must still roll back");
    // The rollback happened in the second phase, not the first.
    assert_eq!(report.state_history.len(), 3, "canary, hold-50, rollback");
}

#[test]
fn metric_outage_fails_safe_into_rollback() {
    let f = fixture();
    let store = SharedMetricStore::new();
    // Monitoring works for the first 20 seconds, then the provider goes dark
    // (no samples at all). Checks that cannot fetch data fail, so the
    // strategy must end in the rollback state rather than proceeding blindly.
    record_errors(&store, 0, 20, 1.0);

    let mut engine = engine_with(&store);
    engine.register_proxy(f.service, f.stable);
    let handle = engine.schedule(two_phase_strategy(&f), SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(3_600));

    let report = engine.report(handle).unwrap();
    assert!(report.is_finished());
    assert!(
        !report.succeeded(),
        "missing monitoring data must fail safe"
    );
}

#[test]
fn unknown_provider_names_fail_safe_into_rollback() {
    let f = fixture();
    let store = SharedMetricStore::new();
    record_errors(&store, 0, 600, 1.0);
    // The check queries a provider that was never registered (e.g. a typo in
    // the DSL, or New Relic configured but not deployed).
    let strategy = StrategyBuilder::new("typo-provider", f.catalog.clone())
        .phase(
            PhaseSpec::canary(
                "canary",
                f.service,
                f.stable,
                f.canary,
                Percentage::new(10.0).unwrap(),
            )
            .check(PhaseCheck::basic(
                "errors",
                CheckSpec::single(
                    MetricQuery::new("new_relic", "errors", "payment_errors"),
                    Validator::LessThan(5.0),
                ),
                Timer::from_secs(10, 3).unwrap(),
                OutcomeMapping::binary(3, -1, 1).unwrap(),
            ))
            .duration_secs(30),
        )
        .build()
        .unwrap();

    let mut engine = engine_with(&store);
    engine.register_proxy(f.service, f.stable);
    let handle = engine.schedule(strategy, SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(600));
    assert!(!engine.report(handle).unwrap().succeeded());
}

#[test]
fn exception_check_aborts_the_canary_within_one_interval() {
    let f = fixture();
    let store = SharedMetricStore::new();
    // Catastrophic failure from the start: error level far above the
    // exception threshold of 50.
    record_errors(&store, 0, 600, 500.0);

    let mut engine = engine_with(&store);
    engine.register_proxy(f.service, f.stable);
    let handle = engine.schedule(two_phase_strategy(&f), SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(3_600));

    let report = engine.report(handle).unwrap();
    assert!(!report.succeeded());
    // The exception check fires every 10 s; the rollback must happen right
    // after the first execution instead of waiting for the 60 s phase end.
    let finished = report.finished_at.expect("finished");
    assert!(
        finished < SimTime::from_secs(20),
        "exception rollback took too long: {finished}"
    );
    assert!(engine
        .events()
        .for_strategy(handle.id())
        .any(|e| matches!(e, EngineEvent::ExceptionTriggered { .. })));
}

#[test]
fn staggered_strategies_do_not_interfere_with_each_other() {
    let f = fixture();
    let store = SharedMetricStore::new();
    record_errors(&store, 0, 2_000, 1.0);

    let mut engine = engine_with(&store);
    engine.register_proxy(f.service, f.stable);
    // Twenty strategies start 10 seconds apart (a realistic release train
    // rather than the synchronized worst case of the scalability experiment).
    let handles: Vec<_> = (0..20)
        .map(|i| engine.schedule(two_phase_strategy(&f), SimTime::from_secs(i * 10)))
        .collect();
    engine.run_to_completion(SimTime::from_secs(7_200));

    for handle in &handles {
        let report = engine.report(*handle).unwrap();
        assert!(report.succeeded(), "staggered strategy failed: {report:?}");
        // Staggered starts avoid the synchronized contention, so delays stay
        // well below a single check interval.
        assert!(report.enactment_delay().unwrap() < Duration::from_secs(10));
    }
    assert!(engine.all_finished());
}
