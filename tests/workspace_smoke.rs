//! Workspace smoke test: the facade path from DSL source to a finished
//! enactment report, entirely on virtual time. This is the minimal
//! end-to-end journey a downstream user of the `bifrost` facade takes —
//! `bifrost::dsl::parse_strategy` → `BifrostEngine::schedule` →
//! `run_to_completion` → `report().succeeded()` — and it doubles as a
//! compile-time check that every re-exported crate is wired into the facade.

use bifrost::engine::{BifrostEngine, EngineConfig};
use bifrost::metrics::SharedMetricStore;
use bifrost::simnet::SimTime;

const SMOKE_STRATEGY: &str = r#"
name: smoke
strategy:
  phases:
    - phase: canary
      service: search
      stable: v1
      candidate: v2
      traffic: 5
      duration: 60
    - phase: rollout
      service: search
      stable: v1
      candidate: v2
      from_traffic: 10
      to_traffic: 100
      step: 10
      step_duration: 30
"#;

#[test]
fn facade_dsl_to_engine_round_trip_succeeds_on_virtual_time() {
    let strategy = bifrost::dsl::parse_strategy(SMOKE_STRATEGY).expect("strategy parses");
    assert_eq!(strategy.name(), "smoke");

    let mut engine = BifrostEngine::new(EngineConfig::default());
    engine.register_store_provider("prometheus", SharedMetricStore::new());
    let handle = engine.schedule(strategy, SimTime::ZERO);
    engine.run_to_completion(SimTime::from_secs(3_600));

    let report = engine.report(handle).expect("report exists");
    assert!(report.is_finished(), "enactment must finish inside horizon");
    assert!(
        report.succeeded(),
        "healthy rollout must succeed: {report:?}"
    );
}

#[test]
fn facade_prelude_exposes_every_layer() {
    // Touch one type per re-exported crate through the prelude so a missing
    // facade wiring fails this test at compile time.
    use bifrost::prelude::*;

    let _ = Percentage::new(50.0).expect("core");
    let _ = SharedMetricStore::new(); // metrics
    let _ = SimTime::from_secs(1); // simnet
    let _ = EngineConfig::default(); // engine
}
