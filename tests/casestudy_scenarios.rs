//! Integration tests exercising the case-study application together with the
//! engine: live traffic routing reacting to strategy state changes, rollback
//! under failure injection, and the dark-launch duplication effect.

use bifrost::casestudy::strategies::EvaluationDurations;
use bifrost::casestudy::{
    evaluation_strategy, CaseStudyApp, CaseStudyTopology, ProxyDeployment, VersionBehavior,
};
use bifrost::engine::{BifrostEngine, EngineConfig};
use bifrost::metrics::{Aggregation, RangeQuery, SharedMetricStore};
use bifrost::simnet::SimRng;
use bifrost::simnet::SimTime;
use bifrost::workload::{LoadProfile, RequestKind, ResponseRecorder};
use std::time::Duration;

fn short_durations() -> EvaluationDurations {
    EvaluationDurations {
        canary: Duration::from_secs(24),
        dark: Duration::from_secs(24),
        ab: Duration::from_secs(24),
        rollout_step: Duration::from_secs(3),
    }
}

/// Drives the application and the engine in lockstep over a synthetic load
/// plan and returns the recorder plus the engine for inspection.
fn drive(
    app: &mut CaseStudyApp,
    engine: &mut BifrostEngine,
    duration: Duration,
    rate: f64,
) -> ResponseRecorder {
    let profile = LoadProfile::paper_profile(duration).with_rate(rate);
    let mut rng = SimRng::seeded(99);
    let plan = profile.plan(&mut rng);
    let mut recorder = ResponseRecorder::new();
    let mut next_scrape = SimTime::from_secs(1);
    for arrival in plan.arrivals() {
        engine.run_until(arrival.at);
        while arrival.at >= next_scrape {
            app.scrape_resources(next_scrape);
            next_scrape += Duration::from_secs(1);
        }
        recorder.record(app.handle_request(arrival.at, arrival.user, arrival.kind));
    }
    engine.run_until(SimTime::ZERO + duration);
    recorder
}

#[test]
fn healthy_release_shifts_traffic_to_the_new_product_version() {
    let store = SharedMetricStore::new();
    let mut app = CaseStudyApp::deploy(store.clone(), ProxyDeployment::Deployed, 21);
    let topology = app.topology().clone();

    let mut engine = BifrostEngine::new(EngineConfig::default());
    engine.register_store_provider("prometheus", store.clone());
    let product_proxy = engine.register_proxy(topology.product_service, topology.product_stable);
    let search_proxy = engine.register_proxy(topology.search_service, topology.search_stable);
    app.attach_proxies(Some(product_proxy), Some(search_proxy));

    let strategy = evaluation_strategy(&topology, short_durations());
    let handle = engine.schedule(strategy, SimTime::from_secs(5));

    let recorder = drive(&mut app, &mut engine, Duration::from_secs(180), 30.0);
    engine.run_to_completion(SimTime::from_secs(600));

    let report = engine.report(handle).unwrap();
    assert!(report.succeeded(), "report: {report:?}");
    assert!(recorder.len() > 3_000);
    assert!(recorder.error_rate() < 0.05);

    // After the rollout, product A serves a large share of the traffic.
    let served_a = store
        .evaluate(
            &RangeQuery::new("requests_total")
                .with_label("version", "product-a")
                .aggregate(Aggregation::Last),
            SimTime::from_secs(600).to_timestamp(),
        )
        .unwrap_or(0.0);
    let served_stable = store
        .evaluate(
            &RangeQuery::new("requests_total")
                .with_label("version", "product")
                .aggregate(Aggregation::Last),
            SimTime::from_secs(600).to_timestamp(),
        )
        .unwrap_or(0.0);
    assert!(served_a > 0.0);
    assert!(served_stable > 0.0);

    // Dark-launch duplication produced shadow traffic on both alternatives.
    for version in ["product-a", "product-b"] {
        let shadows = store
            .evaluate(
                &RangeQuery::new("shadow_requests_total")
                    .with_label("version", version)
                    .aggregate(Aggregation::Last),
                SimTime::from_secs(600).to_timestamp(),
            )
            .unwrap_or(0.0);
        assert!(shadows > 0.0, "no shadow traffic for {version}");
    }
}

#[test]
fn defective_canary_is_rolled_back_and_users_stay_on_stable() {
    let store = SharedMetricStore::new();
    let mut app = CaseStudyApp::deploy(store.clone(), ProxyDeployment::Deployed, 23);
    let topology = app.topology().clone();
    // Product A and B are severely broken: most requests fail, so the canary
    // error checks (rate < 5 per window) trip even at the 5 % traffic share.
    let broken = VersionBehavior {
        speed_factor: 2.0,
        error_rate: 0.85,
        conversion_factor: 0.1,
    };
    app.set_version_behavior(topology.product_a, broken);
    app.set_version_behavior(topology.product_b, broken);

    let mut engine = BifrostEngine::new(EngineConfig::default());
    engine.register_store_provider("prometheus", store.clone());
    let product_proxy = engine.register_proxy(topology.product_service, topology.product_stable);
    let search_proxy = engine.register_proxy(topology.search_service, topology.search_stable);
    app.attach_proxies(Some(product_proxy.clone()), Some(search_proxy));

    let strategy = evaluation_strategy(&topology, short_durations());
    let handle = engine.schedule(strategy, SimTime::from_secs(5));

    drive(&mut app, &mut engine, Duration::from_secs(120), 35.0);
    engine.run_to_completion(SimTime::from_secs(600));

    let report = engine.report(handle).unwrap();
    assert!(report.is_finished());
    assert!(!report.succeeded(), "defective canary must roll back");
    // The rollback state routes everything back to the stable version.
    assert!(!product_proxy.read().config().has_dark_launch());
    let final_decision = {
        let proxy = product_proxy.write();
        proxy.route(&bifrost::proxy::ProxyRequest::from_user(
            bifrost::core::ids::UserId::new(7),
        ))
    };
    assert_eq!(final_decision.primary, topology.product_stable);
}

#[test]
fn ab_test_winner_is_decided_with_statistical_significance() {
    // Run an explicit A/B split between product A (a better-converting
    // redesign) and product B (a poorly converting variant), collect the
    // business metrics the paper's A/B phase monitors, and evaluate the
    // winner with the two-proportion z-test.
    use bifrost::core::prelude::*;
    use bifrost::metrics::{two_proportion_z_test, AbVerdict, Conversions};
    use bifrost::proxy::{ProxyConfig, ProxyRule};
    use parking_lot_shim::new_proxy_handle;

    // Minimal local shim: build a proxy handle like the engine would.
    mod parking_lot_shim {
        use std::sync::Arc;
        pub fn new_proxy_handle(
            proxy: bifrost::proxy::BifrostProxy,
        ) -> bifrost::engine::ProxyHandle {
            Arc::new(parking_lot::RwLock::new(proxy))
        }
    }

    let store = SharedMetricStore::new();
    let mut app = CaseStudyApp::deploy(store.clone(), ProxyDeployment::Deployed, 31);
    let topology = app.topology().clone();
    app.set_version_behavior(
        topology.product_a,
        VersionBehavior {
            speed_factor: 0.9,
            error_rate: 0.001,
            conversion_factor: 1.6,
        },
    );
    app.set_version_behavior(
        topology.product_b,
        VersionBehavior {
            speed_factor: 0.9,
            error_rate: 0.001,
            conversion_factor: 0.6,
        },
    );

    let ab_config = ProxyConfig::new(topology.product_service, topology.product_stable).with_rule(
        ProxyRule::split(
            TrafficSplit::ab(topology.product_a, topology.product_b).unwrap(),
            true,
            UserSelector::All,
            RoutingMode::CookieBased,
        ),
    );
    let proxy = new_proxy_handle(bifrost::proxy::BifrostProxy::new(
        "product-proxy",
        ab_config,
    ));
    app.attach_proxies(Some(proxy), None);

    // Only buy requests matter for the conversion metric.
    for i in 0..6_000u64 {
        app.handle_request(
            SimTime::from_millis(i * 20),
            bifrost::core::ids::UserId::new(i % 2_000),
            RequestKind::Buy,
        );
    }

    let now = SimTime::from_secs(300).to_timestamp();
    let count = |metric: &str, version: &str| {
        store
            .evaluate(
                &RangeQuery::new(metric)
                    .with_label("version", version)
                    .aggregate(Aggregation::Last),
                now,
            )
            .unwrap_or(0.0) as u64
    };
    let a = Conversions::new(
        count("requests_total", "product-a"),
        count("items_sold_total", "product-a"),
    );
    let b = Conversions::new(
        count("requests_total", "product-b"),
        count("items_sold_total", "product-b"),
    );
    assert!(
        a.trials > 2_000 && b.trials > 2_000,
        "A/B split should be ~50/50: {a:?} {b:?}"
    );

    let result = two_proportion_z_test(a, b, 0.05);
    assert_eq!(result.verdict, AbVerdict::AWins, "result: {result:?}");
    assert!(result.p_value < 0.01);
    assert!(result.estimate_a > result.estimate_b);
}

#[test]
fn topology_catalog_is_consistent_with_the_app() {
    let topology = CaseStudyTopology::new();
    assert_eq!(topology.catalog.service_count(), 2);
    assert_eq!(topology.catalog.version_count(), 5);
    assert_eq!(
        topology.catalog.service_of_version(topology.product_a),
        Some(topology.product_service)
    );
    assert_eq!(
        topology.catalog.service_of_version(topology.fast_search),
        Some(topology.search_service)
    );

    let store = SharedMetricStore::new();
    let mut app = CaseStudyApp::deploy(store, ProxyDeployment::None, 1);
    let record = app.handle_request(
        SimTime::from_secs(1),
        bifrost::core::ids::UserId::new(1),
        RequestKind::Search,
    );
    assert!(record.response_time > Duration::ZERO);
    assert!(record.response_time < Duration::from_millis(200));
}
