//! # Bifrost — multi-phase live testing for continuous deployment
//!
//! A Rust reproduction of *"Bifrost: Supporting Continuous Deployment with
//! Automated Enactment of Multi-Phase Live Testing Strategies"*
//! (Schermann, Schöni, Leitner, Gall — ACM/IFIP/USENIX Middleware 2016).
//!
//! This facade crate re-exports the individual workspace crates under a
//! single dependency, so downstream users can write `bifrost::core::…`,
//! `bifrost::engine::…`, and so on:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `bifrost-core` | the formal model: strategies, automata, states, checks, thresholds, routing configuration |
//! | [`metrics`] | `bifrost-metrics` | the monitoring substrate: time-series store, Prometheus-flavoured queries, providers, summary statistics |
//! | [`simnet`] | `bifrost-simnet` | the deterministic cluster simulator: virtual time, event scheduler, VMs/containers, CPU and network models |
//! | [`proxy`] | `bifrost-proxy` | the routing proxy: traffic splits, sticky sessions, dark-launch duplication, overhead model |
//! | [`engine`] | `bifrost-engine` | the enactment engine: strategy scheduling, timed checks, transitions, proxy configuration |
//! | [`dsl`] | `bifrost-dsl` | the YAML-based strategy DSL: parser, document model, compiler |
//! | [`workload`] | `bifrost-workload` | the load generator and response-time recorder |
//! | [`casestudy`] | `bifrost-casestudy` | the 7-service e-commerce application and the paper's evaluation scenarios |
//!
//! ## Quick example
//!
//! Define a two-phase strategy in the DSL, compile it, and enact it against
//! an engine running on virtual time:
//!
//! ```
//! use bifrost::dsl;
//! use bifrost::engine::{BifrostEngine, EngineConfig};
//! use bifrost::metrics::SharedMetricStore;
//! use bifrost::simnet::SimTime;
//!
//! let strategy = dsl::parse_strategy(r#"
//! name: quickstart
//! strategy:
//!   phases:
//!     - phase: canary
//!       service: search
//!       stable: v1
//!       candidate: v2
//!       traffic: 5
//!       duration: 60
//!     - phase: rollout
//!       service: search
//!       stable: v1
//!       candidate: v2
//!       from_traffic: 10
//!       to_traffic: 100
//!       step: 10
//!       step_duration: 30
//! "#)?;
//!
//! let mut engine = BifrostEngine::new(EngineConfig::default());
//! engine.register_store_provider("prometheus", SharedMetricStore::new());
//! let handle = engine.schedule(strategy, SimTime::ZERO);
//! engine.run_to_completion(SimTime::from_secs(3_600));
//! assert!(engine.report(handle).unwrap().succeeded());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The case-study application and evaluation scenarios (`bifrost-casestudy`).
pub use bifrost_casestudy as casestudy;
/// The formal model of live testing strategies (`bifrost-core`).
pub use bifrost_core as core;
/// The YAML-based strategy DSL (`bifrost-dsl`).
pub use bifrost_dsl as dsl;
/// The enactment engine (`bifrost-engine`).
pub use bifrost_engine as engine;
/// The monitoring-data substrate (`bifrost-metrics`).
pub use bifrost_metrics as metrics;
/// The routing proxy (`bifrost-proxy`).
pub use bifrost_proxy as proxy;
/// The deterministic cluster simulator (`bifrost-simnet`).
pub use bifrost_simnet as simnet;
/// The load generator and response recorder (`bifrost-workload`).
pub use bifrost_workload as workload;

/// A prelude pulling in the most commonly used types from every layer.
pub mod prelude {
    pub use bifrost_casestudy::prelude::*;
    pub use bifrost_core::prelude::*;
    pub use bifrost_engine::prelude::*;
    pub use bifrost_metrics::prelude::*;
    pub use bifrost_proxy::prelude::*;
    pub use bifrost_simnet::prelude::*;
    pub use bifrost_workload::prelude::*;
}
