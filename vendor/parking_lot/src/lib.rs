//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind parking_lot's poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s. A poisoned std lock means a thread panicked while holding it;
//! parking_lot's semantics are to keep going, so we recover the inner guard
//! rather than propagate the poison.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;

// Guard types under the real crate's public names (there they are distinct
// types; the std guards are the closest offline stand-ins).
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("data", &&*self.lock())
            .finish()
    }
}

/// A reader–writer lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
