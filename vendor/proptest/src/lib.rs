//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`,
//! range and collection strategies, `prop_map`, and `ProptestConfig`.
//! Generation is deterministic (fixed-seed SplitMix64) and failing cases are
//! reported with their inputs but not shrunk — acceptable for CI-style
//! regression testing, and a drop-in swap for the real crate when the
//! registry is available.

#![forbid(unsafe_code)]

/// Deterministic case generation plumbing.
pub mod test_runner {
    use std::fmt;

    /// Deterministic RNG (SplitMix64) driving all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A fixed-seed RNG so test runs are reproducible.
        pub fn deterministic() -> Self {
            Self {
                state: 0x5EED_B1F0_57E5_7ED5,
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform draw in `[0, bound)`; 0 when `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                ((self.next_u64() as u128 * bound as u128) >> 64) as u64
            }
        }
    }

    /// A failed property case (assertion message plus formatted inputs).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Runner configuration; only `cases` is honoured by this stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy simply draws a value from the RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Widen through i128 so signed spans wider than the
                    // type's positive half don't wrap and sign-extend.
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi as i128 - lo as i128) as u64).wrapping_add(1);
                    // span == 0 means the full 2^64 domain; below() treats 0
                    // as empty, so fall back to a raw draw there.
                    let offset = if span == 0 { rng.next_u64() } else { rng.below(span) };
                    lo.wrapping_add(offset as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            // Occasionally pin the endpoints so `..=100.0` actually hits
            // 100.0, which boundary-condition properties rely on.
            match rng.below(16) {
                0 => lo,
                1 => hi,
                _ => lo + rng.unit_f64() * (hi - lo),
            }
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` or `false` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets whose size lies in `size` (best effort: if the
    /// element domain is too small the set may come up short, but never
    /// below one element when `size.start >= 1`).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(32).max(32) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// The commonly imported surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case (with an
/// optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ "case {}"),
                    $(&$arg,)+ case
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!("proptest case failed: {err} [{inputs}]");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1_000 {
            let v = (3i64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.0f64..=100.0).generate(&mut rng);
            assert!((0.0..=100.0).contains(&f));
        }
    }

    #[test]
    fn signed_range_wider_than_positive_half_stays_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..1_000 {
            let x = (-100i8..100).generate(&mut rng);
            assert!((-100..100).contains(&x), "out of range: {x}");
            let y = (-100i8..=100).generate(&mut rng);
            assert!((-100..=100).contains(&y), "out of range: {y}");
        }
    }

    #[test]
    fn inclusive_float_range_hits_endpoints() {
        let mut rng = TestRng::deterministic();
        let strategy = 0.0f64..=100.0;
        let draws: Vec<f64> = (0..500).map(|_| strategy.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&v| v == 0.0));
        assert!(draws.iter().any(|&v| v == 100.0));
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let v = crate::collection::vec(0i64..10, 1..6).generate(&mut rng);
            assert!((1..6).contains(&v.len()));
            let s = crate::collection::btree_set(-1_000i64..1_000, 1..8).generate(&mut rng);
            assert!(!s.is_empty() && s.len() < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_smoke(a in 0i64..100, b in 0i64..100) {
            prop_assert!(a + b >= a.min(b));
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a - 1, a);
        }
    }
}
