//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API the workspace uses —
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`, and
//! `Rng::gen_range` over half-open ranges — on top of xoshiro256** seeded
//! via SplitMix64. Deterministic for a given seed, which is all the
//! simulation needs; it makes no cryptographic claims.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Types that can produce a uniformly distributed value from raw RNG output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Widen through i128 so signed spans wider than the type's
                // positive half (e.g. -100i8..100) don't wrap negative and
                // sign-extend into a bogus u64 span.
                let span = (self.end as i128 - self.start as i128) as u64;
                // Multiply-shift bounded draw; bias is < 2^-64 * span, which
                // is immaterial for simulation workloads.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors for initialising the full state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn signed_range_wider_than_positive_half_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x), "out of range: {x}");
            let y = rng.gen_range(i64::MIN..i64::MAX);
            assert!(y < i64::MAX);
        }
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x = rng.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&x));
        }
    }
}
