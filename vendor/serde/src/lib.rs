//! Offline stand-in for `serde`.
//!
//! The crates.io registry is unavailable in the build environment, and the
//! workspace only ever *derives* `Serialize` / `Deserialize` — no code path
//! serializes or deserializes at runtime. This stub therefore ships empty
//! marker traits and re-exports the no-op derive macros, keeping every
//! `use serde::{Deserialize, Serialize};` + `#[derive(...)]` site compiling
//! unchanged. Swapping back to the real serde is a one-line manifest change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no items; derive is a no-op).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no items; derive is a no-op).
pub trait Deserialize<'de> {}
