//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives these traits on model types for API compatibility
//! with the real `serde`, but never calls a serializer, so the derives can
//! expand to nothing. Attribute arguments (`#[serde(...)]`) are accepted and
//! ignored.

use proc_macro::TokenStream;

/// Expands to nothing; the marker traits in the `serde` stub have no items.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the marker traits in the `serde` stub have no items.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
