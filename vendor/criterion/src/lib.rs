//! Offline stand-in for `criterion`.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`) with a
//! deliberately small measurement loop: each benchmark is warmed up once and
//! timed over a fixed number of iterations, and the mean time is printed.
//! No statistics, plots, or baselines — enough to compile and smoke-run the
//! benches offline; swap the manifest entry for real criterion to get real
//! measurements.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for `criterion::black_box(...)` call sites.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iterations: u64) -> Self {
        Self {
            iterations,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    iterations: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        // A handful of iterations keeps offline `cargo bench` runs fast while
        // still exercising the full benchmark body.
        Self { iterations: 10 }
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher::new(self.iterations);
        f(&mut bencher);
        let mean = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        println!("bench {label:<60} {:>12.3} µs/iter", mean * 1e6);
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.to_string(), f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (mapped onto plain iterations here).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.criterion.iterations = samples.max(1) as u64;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&label, f);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups, mirroring criterion's macro of
/// the same name (benches must set `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| {
                hits += 1;
                black_box(n * 2)
            })
        });
        group.finish();
        assert!(hits > 0);
    }
}
